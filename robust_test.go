package raidsim_test

import (
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

// TestRobustOffEquivalence re-runs the full equivalence matrix with the
// robustness layer explicitly zeroed (the defaults) and checks every
// case against the same golden fingerprints: deadlines, retries,
// hedging, shedding, and sick disks all off must cost nothing and
// change nothing, bit for bit.
func TestRobustOffEquivalence(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement: layout.EndPlacement,
			Robust:    array.RobustConfig{}, // every robustness feature off
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
				SickDisks: nil,
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if res.Robust.Enabled {
			t.Errorf("%s: robustness layer armed with a zero config", tc.name)
		}
		got := fingerprint(res)
		if want, ok := equivalenceGolden[tc.name]; ok && got != want {
			t.Errorf("%s: zero robust config perturbed the simulation\n got: %s\nwant: %s", tc.name, got, want)
		}
	}
}

// TestDeadlineAccountingIsPureObservation runs one pinned case with only
// a deadline configured. Deadline accounting watches completions — it
// must not move a single event, request, or disk access.
func TestDeadlineAccountingIsPureObservation(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5,
		Spec: geom.Default(), Sync: array.DF,
		CacheMB: 8, Seed: 9,
		Placement: layout.EndPlacement,
		Robust:    array.RobustConfig{Deadline: 50 * sim.Millisecond},
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(res), equivalenceGolden["raid5"]; got != want {
		t.Errorf("deadline accounting perturbed the simulation\n got: %s\nwant: %s", got, want)
	}
	rb := &res.Robust
	if !rb.Enabled {
		t.Fatal("deadline config did not arm the robustness layer")
	}
	if n := rb.DeadlineMet[array.SLOGold] + rb.DeadlineMiss[array.SLOGold] +
		rb.DeadlineMet[array.SLOBatch] + rb.DeadlineMiss[array.SLOBatch]; n == 0 {
		t.Error("no requests measured against the deadline")
	}
}

// TestRetryPropertyNoDataLoss is the retry/hedge property test from the
// issue: RAID1/0 with a sick disk injecting transient read errors, a
// retry budget of 2, and hedging on. The run must complete with zero
// data loss (exhausted retries fall back to the mirror twin), every
// exhausted read must have spent exactly its full budget, and both the
// retry and hedge machinery must demonstrably fire — including in the
// exported observability event stream.
func TestRetryPropertyNoDataLoss(t *testing.T) {
	const budget = 2
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgRAID10, DataDisks: 10, N: 5,
		Spec: geom.Default(), Sync: array.DF,
		CacheMB: 8, Seed: 9, StripingUnit: 4,
		Placement: layout.EndPlacement,
		Robust: array.RobustConfig{
			Deadline:   50 * sim.Millisecond,
			Retries:    budget,
			HedgeAfter: 10 * sim.Millisecond,
		},
		Fault: fault.Config{
			SickDisks: []fault.SickDisk{{
				Disk:          0,
				At:            20 * sim.Second,
				Until:         150 * sim.Second, // inside the trace (arrivals end ~175s)
				SlowFactor:    8,
				TransientRate: 0.5,
			}},
		},
		Obs: obs.Config{TraceCap: 1 << 14},
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	f := res.Fault
	if f.SickOnsets == 0 || f.SickClears == 0 {
		t.Errorf("sick disk never cycled: %d onsets, %d clears", f.SickOnsets, f.SickClears)
	}
	if f.TransientErrors == 0 {
		t.Error("transient-rate 0.5 produced no transient errors")
	}
	if f.DataLossEvents != 0 || f.LostReadBlocks != 0 || f.LostWriteBlocks != 0 {
		t.Errorf("data loss despite full redundancy: %d events, %d read / %d write blocks",
			f.DataLossEvents, f.LostReadBlocks, f.LostWriteBlocks)
	}
	rb := &res.Robust
	if rb.Retries == 0 {
		t.Error("no retries issued")
	}
	if rb.AttemptsExhausted != rb.RetriesExhausted*budget {
		t.Errorf("exhausted reads did not spend exactly their budget: %d attempts for %d reads x %d retries",
			rb.AttemptsExhausted, rb.RetriesExhausted, budget)
	}
	if rb.Hedges == 0 || rb.HedgeWins == 0 {
		t.Errorf("hedging never paid off: %d issued, %d wins", rb.Hedges, rb.HedgeWins)
	}
	if rb.Hedges != rb.HedgeWins+rb.HedgeLosses {
		t.Errorf("hedge legs unaccounted: %d issued != %d wins + %d losses",
			rb.Hedges, rb.HedgeWins, rb.HedgeLosses)
	}
	if rb.DeadlineMiss[array.SLOGold]+rb.DeadlineMiss[array.SLOBatch] == 0 {
		t.Error("a 50ms deadline under an 8x-slow disk missed nothing")
	}
	kinds := map[string]int{}
	for _, ev := range res.ObsEvents {
		kinds[ev.Kind]++
	}
	for _, k := range []string{obs.EvRetry, obs.EvHedge, obs.EvHedgeWin, obs.EvSickOnset, obs.EvSickClear, obs.EvTimeout} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in the retained stream (got %v)", k, kinds)
		}
	}
}

// TestShedBatchOnly drives a cached RAID5 into admission control with a
// tiny queue threshold and checks that shedding hits only the batch
// class while the run still completes and drains.
func TestShedBatchOnly(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5,
		Spec: geom.Default(), Sync: array.DF,
		Cached: true, CacheMB: 8, Seed: 9,
		Placement: layout.EndPlacement,
		Robust:    array.RobustConfig{ShedQueue: 2},
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	rb := &res.Robust
	if rb.Shed[array.SLOBatch] == 0 {
		t.Error("queue threshold 2 shed nothing")
	}
	if rb.Shed[array.SLOGold] != 0 {
		t.Errorf("admission control shed %d gold-class requests", rb.Shed[array.SLOGold])
	}
}

// TestSickDiskHangCompletes checks the intermittent-hang mode: a drive
// that periodically freezes must stall, not wedge — the run drains and
// the hang windows are counted.
func TestSickDiskHangCompletes(t *testing.T) {
	p := smallProfile()
	p.Requests = 2000
	p.Duration = 120 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgMirror, DataDisks: 10, N: 5,
		Spec: geom.Default(), Sync: array.DF,
		CacheMB: 8, Seed: 9,
		Placement: layout.EndPlacement,
		Fault: fault.Config{
			SickDisks: []fault.SickDisk{{
				Disk:      2,
				At:        10 * sim.Second,
				Until:     90 * sim.Second,
				HangEvery: 5 * sim.Second,
				HangFor:   500 * sim.Millisecond,
			}},
		},
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fault.Hangs == 0 {
		t.Error("periodic hang schedule never fired")
	}
	if res.Requests != int64(len(tr.Records)) {
		t.Errorf("hangs lost requests: %d/%d completed", res.Requests, len(tr.Records))
	}
}
