package raidsim_test

import (
	"testing"

	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// TestSpecPathReproducesEquivalenceGolden re-runs the full equivalence
// matrix with the trace generated through the declarative workload-spec
// path (SpecFromProfile -> Spec.Generate) instead of the profile path.
// Every fingerprint must match the pre-refactor goldens bit-identically:
// the spec compilation, the class table it attaches, and the per-class
// accounting must not perturb a single event, counter, or mean.
func TestSpecPathReproducesEquivalenceGolden(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.SpecFromProfile(p).Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Classes) != 1 || tr.Classes[0].SLO != trace.SLOAuto {
		t.Fatalf("spec-path trace classes = %+v, want one auto class", tr.Classes)
	}
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement: layout.EndPlacement,
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, ok := equivalenceGolden[tc.name]
		if !ok {
			continue
		}
		if got := fingerprint(res); got != want {
			t.Errorf("%s: spec-path trace drifted from the goldens\n got: %s\nwant: %s", tc.name, got, want)
		}
		// The class table also buys per-class results; the single class
		// must account for exactly the measured requests.
		if len(res.Classes) != 1 {
			t.Fatalf("%s: per-class results = %+v, want one class", tc.name, res.Classes)
		}
		if n := res.Classes[0].Requests; n != res.Resp.N() {
			t.Errorf("%s: class accounted %d requests, results measured %d", tc.name, n, res.Resp.N())
		}
	}
}
