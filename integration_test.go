// Package raidsim_test holds cross-module integration tests: the full
// pipeline from synthetic trace generation through file round-trips to
// multi-array simulation, exercising the same paths the command-line
// tools use.
package raidsim_test

import (
	"bytes"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func smallProfile() workload.Profile {
	p := workload.Trace2Profile()
	p.Requests = 6000
	p.Duration = 300 * sim.Second
	return p
}

// TestPipelineGenerateEncodeSimulate drives generate -> binary file ->
// decode -> simulate, and checks the decoded trace behaves identically to
// the in-memory one.
func TestPipelineGenerateEncodeSimulate(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 3,
	}
	direct, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	roundtrip, err := core.Run(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Resp.Mean() != roundtrip.Resp.Mean() || direct.Events != roundtrip.Events {
		t.Fatalf("file round-trip changed simulation: %f/%d vs %f/%d",
			direct.Resp.Mean(), direct.Events, roundtrip.Resp.Mean(), roundtrip.Events)
	}
}

// TestEveryOrganizationEndToEnd runs each organization, cached and not,
// against the same workload and checks structural sanity of the results.
func TestEveryOrganizationEndToEnd(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	type c struct {
		org    array.Org
		cached bool
	}
	cases := []c{
		{array.OrgBase, false}, {array.OrgBase, true},
		{array.OrgMirror, false}, {array.OrgMirror, true},
		{array.OrgRAID5, false}, {array.OrgRAID5, true},
		{array.OrgParityStriping, false}, {array.OrgParityStriping, true},
		{array.OrgRAID4, true},
	}
	for _, tc := range cases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: array.DFPR,
			Cached: tc.cached, CacheMB: 8, Seed: 4,
			Placement: layout.EndPlacement,
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Errorf("%v cached=%v: %v", tc.org, tc.cached, err)
			continue
		}
		if res.Requests != int64(len(tr.Records)) {
			t.Errorf("%v cached=%v: lost requests %d/%d", tc.org, tc.cached, res.Requests, len(tr.Records))
		}
		if res.Resp.Mean() <= 0 {
			t.Errorf("%v cached=%v: zero response time", tc.org, tc.cached)
		}
		wantDisks := map[array.Org]int{
			array.OrgBase:           10,
			array.OrgMirror:         20,
			array.OrgRAID5:          12,
			array.OrgRAID4:          12,
			array.OrgParityStriping: 12,
		}[tc.org]
		if len(res.DiskUtil) != wantDisks {
			t.Errorf("%v: %d disks, want %d", tc.org, len(res.DiskUtil), wantDisks)
		}
	}
}

// TestTraceSpeedMonotonicity: doubling the load must not improve response
// time; halving it must not hurt, for every organization.
func TestTraceSpeedMonotonicity(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []array.Org{array.OrgBase, array.OrgRAID5} {
		var means []float64
		for _, speed := range []float64{0.5, 1, 2} {
			cfg := core.Config{
				Org: org, DataDisks: 10, N: 10,
				Spec: geom.Default(), Sync: array.DF, Seed: 5,
			}
			scaled, err := tr.Scale(speed)
			if err != nil {
				t.Fatalf("%v @%g: %v", org, speed, err)
			}
			res, err := core.Run(cfg, scaled)
			if err != nil {
				t.Fatalf("%v @%g: %v", org, speed, err)
			}
			means = append(means, res.Resp.Mean())
		}
		if !(means[0] <= means[1]*1.05 && means[1] <= means[2]*1.05) {
			t.Errorf("%v: response not monotone in load: %v", org, means)
		}
	}
}

// TestStripingUnitExtremesApproachKnownShapes: an enormous striping unit
// makes RAID5 behave like unstriped data + parity, so its balancing edge
// over a 1-block unit should vanish on the skewed trace (Figure 8's
// right-hand side rising toward Parity Striping).
func TestStripingUnitExtremes(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	mean := func(su int) float64 {
		cfg := core.Config{
			Org: array.OrgRAID5, DataDisks: 10, N: 10,
			Spec: geom.Default(), Sync: array.DF, StripingUnit: su, Seed: 6,
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("su=%d: %v", su, err)
		}
		return res.Resp.Mean()
	}
	fine, coarse := mean(1), mean(4096)
	if fine >= coarse {
		// Trace 2 is skew-dominated: fine striping must win.
		t.Errorf("striping unit 1 (%.2f ms) should beat 4096 (%.2f ms) on the skewed trace", fine, coarse)
	}
}
