// Package raidsim_test holds cross-module integration tests: the full
// pipeline from synthetic trace generation through file round-trips to
// multi-array simulation, exercising the same paths the command-line
// tools use.
package raidsim_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func smallProfile() workload.Profile {
	p := workload.Trace2Profile()
	p.Requests = 6000
	p.Duration = 300 * sim.Second
	return p
}

// TestPipelineGenerateEncodeSimulate drives generate -> binary file ->
// decode -> simulate, and checks the decoded trace behaves identically to
// the in-memory one.
func TestPipelineGenerateEncodeSimulate(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	decoded, err := trace.ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 3,
	}
	direct, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	roundtrip, err := core.Run(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Resp.Mean() != roundtrip.Resp.Mean() || direct.Events != roundtrip.Events {
		t.Fatalf("file round-trip changed simulation: %f/%d vs %f/%d",
			direct.Resp.Mean(), direct.Events, roundtrip.Resp.Mean(), roundtrip.Events)
	}
}

// TestEveryOrganizationEndToEnd runs each organization, cached and not,
// against the same workload and checks structural sanity of the results.
func TestEveryOrganizationEndToEnd(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	type c struct {
		org    array.Org
		cached bool
	}
	cases := []c{
		{array.OrgBase, false}, {array.OrgBase, true},
		{array.OrgMirror, false}, {array.OrgMirror, true},
		{array.OrgRAID5, false}, {array.OrgRAID5, true},
		{array.OrgParityStriping, false}, {array.OrgParityStriping, true},
		{array.OrgRAID4, true},
	}
	for _, tc := range cases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: array.DFPR,
			Cached: tc.cached, CacheMB: 8, Seed: 4,
			Placement: layout.EndPlacement,
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Errorf("%v cached=%v: %v", tc.org, tc.cached, err)
			continue
		}
		if res.Requests != int64(len(tr.Records)) {
			t.Errorf("%v cached=%v: lost requests %d/%d", tc.org, tc.cached, res.Requests, len(tr.Records))
		}
		if res.Resp.Mean() <= 0 {
			t.Errorf("%v cached=%v: zero response time", tc.org, tc.cached)
		}
		wantDisks := map[array.Org]int{
			array.OrgBase:           10,
			array.OrgMirror:         20,
			array.OrgRAID5:          12,
			array.OrgRAID4:          12,
			array.OrgParityStriping: 12,
		}[tc.org]
		if len(res.DiskUtil) != wantDisks {
			t.Errorf("%v: %d disks, want %d", tc.org, len(res.DiskUtil), wantDisks)
		}
	}
}

// equivalenceCases enumerates org × cached × faulted combinations whose
// exact simulation outputs are pinned below. The fingerprints were
// captured before the redundancy-scheme refactor of internal/array; the
// refactor (and any future one) must reproduce them bit for bit.
var equivalenceCases = []struct {
	name    string
	org     array.Org
	sync    array.SyncPolicy
	cached  bool
	faulted bool
}{
	{"base", array.OrgBase, array.DF, false, false},
	{"base+f", array.OrgBase, array.DF, false, true},
	{"base$", array.OrgBase, array.DF, true, false},
	{"base$+f", array.OrgBase, array.DF, true, true},
	{"mirror", array.OrgMirror, array.DF, false, false},
	{"mirror+f", array.OrgMirror, array.DF, false, true},
	{"mirror$", array.OrgMirror, array.DF, true, false},
	{"mirror$+f", array.OrgMirror, array.DF, true, true},
	{"raid5", array.OrgRAID5, array.DF, false, false},
	{"raid5+f", array.OrgRAID5, array.DF, false, true},
	{"raid5$", array.OrgRAID5, array.DF, true, false},
	{"raid5$+f", array.OrgRAID5, array.DF, true, true},
	{"raid5-si", array.OrgRAID5, array.SI, false, false},
	{"pstripe", array.OrgParityStriping, array.DFPR, false, false},
	{"pstripe+f", array.OrgParityStriping, array.DFPR, false, true},
	{"pstripe$", array.OrgParityStriping, array.DFPR, true, false},
	{"pstripe$+f", array.OrgParityStriping, array.DFPR, true, true},
	{"raid4$", array.OrgRAID4, array.DF, true, false},
	{"raid4$+f", array.OrgRAID4, array.DF, true, true},
}

// equivalenceGolden maps case name -> exact fingerprint (hex floats, so
// equality means bit-identical). Regenerate with
// `go test -run TestRefactorEquivalence -v` and paste the printed lines —
// but only when a model change is intentional.
var equivalenceGolden = map[string]string{
	"base":       "ev=12000 req=4000 resp=4000/0x1.cfc904b636f94p+05 rd=2856/0x1.bbe0f6d345a1bp+05 wr=1144/0x1.00bdaaf66395ep+06 norm=4000/0x1.cfc904b636f94p+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.282f86eb17bbfp+08 held=0 par=0 acc=[76 2059 76 132 695 289 62 147 382 82] fault=0,0,0,0,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"base+f":     "ev=12001 req=4000 resp=4000/0x1.cfceb5113bb4ep+05 rd=2856/0x1.bbe0f6d345a1bp+05 wr=1144/0x1.00c79d09e039fp+06 norm=4000/0x1.cfceb5113bb4ep+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.28343cd589294p+08 held=0 par=0 acc=[76 2059 76 132 695 289 62 147 382 82] fault=1,1,0,1,1,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"base$":      "ev=13216 req=4000 resp=4000/0x1.ff8a794c8be43p+04 rd=2856/0x1.626400c4c4a0bp+05 wr=1144/0x1.32131b6135be9p+00 norm=4000/0x1.ff8a794c8be43p+04 deg=0/0x0p+00 hits=137,2719,296,848 seek=0x1.1e872422c214p+08 held=0 par=0 acc=[77 2012 74 130 691 289 61 144 376 80] fault=0,0,0,0,0,0,0,0,0,0 cache=7229,3531,0,0,2011,0,0,2048",
	"base$+f":    "ev=13239 req=4000 resp=4000/0x1.028ecf6f5840ep+05 rd=2856/0x1.6645056b2fceep+05 wr=1144/0x1.341123944c3aap+00 norm=4000/0x1.028ecf6f5840ep+05 deg=0/0x0p+00 hits=110,2746,220,924 seek=0x1.1dd20bd20edbfp+08 held=0 par=0 acc=[77 2027 74 130 692 291 61 145 376 81] fault=1,1,0,1,1,0,0,0,0,0 cache=4519,1323,0,0,1183,0,0,2048",
	"mirror":     "ev=13144 req=4000 resp=4000/0x1.4d67fb90374dcp+05 rd=2856/0x1.25d1d4e8e2f03p+05 wr=1144/0x1.b03bed11bb253p+05 norm=4000/0x1.4d67fb90374dcp+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.03b5f3bb76232p+08 held=0 par=0 acc=[56 49 1453 1184 54 39 106 62 516 395 222 147 48 33 107 74 269 221 65 44] fault=0,0,0,0,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"mirror+f":   "ev=22595 req=4000 resp=4000/0x1.50d3737b4cd2p+05 rd=2856/0x1.284ecb6604432p+05 wr=1144/0x1.b5fad312e552bp+05 norm=1473/0x1.0d0b39ec2e1f4p+05 deg=2527/0x1.785624af520c6p+05 hits=0,0,0,0 seek=0x1.c4e133a7498a1p+07 held=0 par=0 acc=[4800 4755 1453 1184 54 39 106 62 516 395 222 147 48 33 107 74 269 221 65 44] fault=1,1,1,1,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"mirror$":    "ev=15584 req=4000 resp=4000/0x1.5782eb69d71a4p+04 rd=2856/0x1.d96ec151e5a36p+04 wr=1144/0x1.3299fb05b1b6p+00 norm=4000/0x1.5782eb69d71a4p+04 deg=0/0x0p+00 hits=137,2719,296,848 seek=0x1.c0d4cbb8b1c89p+07 held=0 par=0 acc=[58 49 1466 1141 53 38 102 64 542 379 209 167 49 31 104 74 275 210 65 42] fault=0,0,0,0,0,0,0,0,0,0 cache=7229,3531,0,0,2011,0,0,2048",
	"mirror$+f":  "ev=25818 req=4000 resp=4000/0x1.5eeb53bbd00c2p+04 rd=2856/0x1.e3d2e7b390b1p+04 wr=1144/0x1.31f587c433e7ap+00 norm=1474/0x1.27727d11befa5p+04 deg=2526/0x1.7f49f5e30e192p+04 hits=110,2746,220,924 seek=0x1.7a76067cb1c68p+07 held=0 par=0 acc=[4800 4757 1475 1147 53 38 102 64 542 380 210 168 49 31 104 75 274 211 65 43] fault=1,1,1,1,0,0,0,0,0,0 cache=4519,1323,0,0,1183,0,0,2048",
	"raid5":      "ev=19840 req=4000 resp=4000/0x1.8082a4fe51aa4p+05 rd=2856/0x1.30ac54da5bf23p+05 wr=1144/0x1.23e97b748cc84p+06 norm=4000/0x1.8082a4fe51aa4p+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.6df22b9d20c31p+08 held=108 par=1322 acc=[834 864 859 821 892 846 266 258 301 268 263 242] fault=0,0,0,0,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"raid5+f":    "ev=53191 req=4000 resp=4000/0x1.692a8caf8c866p+06 rd=2856/0x1.29c48d7248ba4p+06 wr=1144/0x1.03b8659dfb8f8p+07 norm=1472/0x1.4bc691c78c9ep+05 deg=2528/0x1.dadf632633cadp+06 hits=0,0,0,0 seek=0x1.3ca026453d2p+08 held=61 par=1708 acc=[6296 5277 6319 6282 6347 6296 266 258 301 268 263 242] fault=1,1,1,1,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"raid5$":     "ev=21623 req=4000 resp=4000/0x1.6ad18dc979282p+04 rd=2856/0x1.f4a23e03ec1eap+04 wr=1144/0x1.2c33122128a07p+00 norm=4000/0x1.6ad18dc979282p+04 deg=0/0x0p+00 hits=137,2719,296,848 seek=0x1.568b0a9f05414p+08 held=110 par=1357 acc=[837 868 848 831 894 853 262 261 307 271 258 245] fault=0,0,0,0,0,0,0,0,0,0 cache=7229,3531,0,191,2011,0,0,2048",
	"raid5$+f":   "ev=54651 req=4000 resp=4000/0x1.66642c8e8f8b3p+05 rd=2856/0x1.f2362e66e743p+05 wr=1144/0x1.2a89eaba26a06p+00 norm=1474/0x1.42a9979508e56p+04 deg=2526/0x1.d961cbfd832b2p+05 hits=110,2746,220,924 seek=0x1.3c06244e83d61p+08 held=53 par=1723 acc=[6266 5281 6279 6251 6312 6270 261 263 308 272 260 247] fault=1,1,1,1,0,0,0,0,0,0 cache=4519,1323,0,74,1183,0,0,2048",
	"raid5-si":   "ev=20890 req=4000 resp=4000/0x1.96c853a7ae152p+05 rd=2856/0x1.50b35c1b78f16p+05 wr=1144/0x1.22df01bd0943ap+06 norm=4000/0x1.96c853a7ae152p+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.6bd363270c6f1p+08 held=1132 par=1322 acc=[834 864 859 821 892 846 266 258 301 268 263 242] fault=0,0,0,0,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"pstripe":    "ev=17837 req=4000 resp=4000/0x1.e29df6690e9eep+05 rd=2856/0x1.a081af46b9123p+05 wr=1144/0x1.43d4bd9ef04cp+06 norm=4000/0x1.e29df6690e9eep+05 deg=0/0x0p+00 hits=0,0,0,0 seek=0x1.18d8a17a178edp+08 held=117 par=1144 acc=[232 1827 356 273 513 713 297 120 112 433 151 117] fault=0,0,0,0,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"pstripe+f":  "ev=58501 req=4000 resp=4000/0x1.28d815d3ad4ddp+07 rd=2856/0x1.0550fd73b89a8p+07 wr=1144/0x1.818a05b31e81dp+07 norm=1473/0x1.90c784792b3a8p+05 deg=2527/0x1.9b78ca47f159dp+07 hits=0,0,0,0 seek=0x1.4b6176a0a7689p+08 held=62 par=1631 acc=[7194 5787 7256 7189 7511 7747 297 120 112 433 151 117] fault=1,1,1,1,0,0,0,0,0,0 cache=0,0,0,0,0,0,0,0",
	"pstripe$":   "ev=18931 req=4000 resp=4000/0x1.ad3afbdb71f0dp+04 rd=2856/0x1.28914ec3b60e2p+05 wr=1144/0x1.40a9df306c1a2p+00 norm=4000/0x1.ad3afbdb71f0dp+04 deg=0/0x0p+00 hits=137,2719,296,848 seek=0x1.0be199ef7d3bp+08 held=131 par=1184 acc=[245 1786 354 275 521 711 298 123 110 434 145 116] fault=0,0,0,0,0,0,0,0,0,0 cache=7229,3531,0,191,2011,0,0,2048",
	"pstripe$+f": "ev=59333 req=4000 resp=4000/0x1.355eb7daaae42p+06 rd=2856/0x1.af4c1576419b8p+06 wr=1144/0x1.3e9c448d8df73p+00 norm=1474/0x1.77481e1242c6fp+04 deg=2526/0x1.b3266038b1436p+06 hits=110,2746,220,924 seek=0x1.44752a672061ep+08 held=55 par=1646 acc=[7100 5785 7154 7090 7414 7634 300 123 111 434 145 117] fault=1,1,1,1,0,0,0,0,0,0 cache=4519,1323,0,74,1183,0,0,2048",
	"raid4$":     "ev=20849 req=4000 resp=4000/0x1.556b88b74095dp+04 rd=2856/0x1.d6b740516a79p+04 wr=1144/0x1.2a1f96de0f7bep+00 norm=4000/0x1.556b88b74095dp+04 deg=0/0x0p+00 hits=137,2719,296,848 seek=0x1.4e1e5238d45b6p+08 held=0 par=1331 acc=[705 759 709 774 771 1009 230 236 261 227 222 322] fault=0,0,0,0,0,0,0,0,0,0 cache=7229,3532,0,204,2011,1331,306,2048",
	"raid4$+f":   "ev=54693 req=4000 resp=4000/0x1.b212d9539041ep+05 rd=2856/0x1.2e194a0f1c9b3p+06 wr=1144/0x1.2b79b6d6d1c7p+00 norm=1474/0x1.3894a0056e6fep+04 deg=2526/0x1.2a159e74daa96p+06 hits=110,2746,220,924 seek=0x1.2f49982ee9061p+08 held=6 par=1714 acc=[6213 5086 6208 6276 6275 6845 229 237 261 230 224 322] fault=1,1,1,1,0,0,0,0,0,0 cache=4519,1323,0,74,1183,199,0,2048",
}

// fingerprint formats the fields of a system result that together pin the
// simulation: every counter and the exact bits of every mean.
func fingerprint(r *core.Results) string {
	var b strings.Builder
	hex := func(f float64) string { return fmt.Sprintf("%x", f) }
	fmt.Fprintf(&b, "ev=%d req=%d resp=%d/%s rd=%d/%s wr=%d/%s norm=%d/%s deg=%d/%s",
		r.Events, r.Requests,
		r.Resp.N(), hex(r.Resp.Mean()),
		r.ReadResp.N(), hex(r.ReadResp.Mean()),
		r.WriteResp.N(), hex(r.WriteResp.Mean()),
		r.NormalResp.N(), hex(r.NormalResp.Mean()),
		r.DegradedResp.N(), hex(r.DegradedResp.Mean()))
	fmt.Fprintf(&b, " hits=%d,%d,%d,%d seek=%s held=%d par=%d",
		r.ReadHits, r.ReadMisses, r.WriteHits, r.WriteMisses,
		hex(r.SeekDistMean), r.HeldRotations, r.ParityAccesses)
	fmt.Fprintf(&b, " acc=%v", r.DiskAccesses)
	f := r.Fault
	fmt.Fprintf(&b, " fault=%d,%d,%d,%d,%d,%d,%d,%d,%d,%d",
		f.Failures, f.SparesUsed, f.Rebuilds, f.DegradedWindows,
		f.DataLossEvents, f.LostReadBlocks, f.LostWriteBlocks,
		f.DirtyBlocksLost, f.SectorErrors, f.FailoverReads)
	c := r.Cache
	fmt.Fprintf(&b, " cache=%d,%d,%d,%d,%d,%d,%d,%d",
		c.Inserts, c.Evictions, c.DirtyEvictions, c.OldCaptured,
		c.Destages, c.ParityQueued, c.ParityStalls, c.PeakUsed)
	return b.String()
}

// TestRefactorEquivalence locks the whole simulation — every organization,
// cached and not, healthy and with a mid-run disk failure (plus an NVRAM
// cache failure for the cached variants) — to fingerprints captured before
// the scheme-pipeline refactor. Any drift is a behavior change, not a
// refactor.
func TestRefactorEquivalence(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement: layout.EndPlacement,
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
			continue
		}
		got := fingerprint(res)
		want, ok := equivalenceGolden[tc.name]
		if !ok {
			t.Logf("equivalenceGolden[%q] = %q", tc.name, got)
			continue
		}
		if got != want {
			t.Errorf("%s: results drifted from the pre-refactor capture\n got: %s\nwant: %s", tc.name, got, want)
		}
	}
}

// TestObservabilityEquivalence re-runs the equivalence matrix with the
// observability recorder armed and checks every result against the same
// golden fingerprints, modulo the event count: the recorder's sampling
// ticker adds engine events but must not perturb a single request,
// cache, disk or fault statistic. It also sanity-checks that the series
// actually captured the run.
func TestObservabilityEquivalence(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the leading "ev=N " field: the sampler is allowed to add
	// engine events, and nothing else.
	stripEv := func(fp string) string {
		if i := strings.Index(fp, " "); i >= 0 && strings.HasPrefix(fp, "ev=") {
			return fp[i+1:]
		}
		return fp
	}
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement: layout.EndPlacement,
			Obs:       obs.Config{Window: 10 * sim.Second, TraceCap: 64, SpanTopK: 4},
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, ok := equivalenceGolden[tc.name]
		if !ok {
			continue
		}
		if got := stripEv(fingerprint(res)); got != stripEv(want) {
			t.Errorf("%s: recording observability changed the simulation\n got: %s\nwant: %s", tc.name, got, stripEv(want))
		}
		if res.Series == nil {
			t.Fatalf("%s: no series recorded", tc.name)
		}
		var reqs int64
		for _, pt := range res.Series.Points() {
			reqs += pt.Requests
		}
		if reqs != res.Resp.N() {
			t.Errorf("%s: series saw %d requests, results saw %d", tc.name, reqs, res.Resp.N())
		}
		if tc.faulted && len(res.ObsEvents) == 0 {
			t.Errorf("%s: faulted run retained no observability events", tc.name)
		}
		if len(res.TailSpans) == 0 {
			t.Errorf("%s: span tracer armed but no tail samples retained", tc.name)
		}
		for _, s := range res.TailSpans {
			if s.Tree.Duration() <= 0 {
				t.Errorf("%s: retained tree with non-positive duration", tc.name)
			}
		}
	}
}

// TestSelfMetricsEquivalence re-runs the full equivalence matrix with
// engine self-metrics armed and checks the COMPLETE fingerprint — event
// count included — against the golden captures: the meter is pure
// observation, scheduling nothing and consuming no randomness, so unlike
// the obs sampler it may not add even one engine event. It also checks
// the meter's own accounting against the results it rode along with.
func TestSelfMetricsEquivalence(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range equivalenceCases {
		cfg := core.Config{
			Org: tc.org, DataDisks: 10, N: 5,
			Spec: geom.Default(), Sync: tc.sync,
			Cached: tc.cached, CacheMB: 8, Seed: 9,
			Placement:   layout.EndPlacement,
			SelfMetrics: true,
		}
		if tc.faulted {
			cfg.Spares = 1
			cfg.Fault = fault.Config{
				DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
			}
			if tc.cached {
				cfg.Fault.CacheFailAt = 60 * sim.Second
			}
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, ok := equivalenceGolden[tc.name]
		if !ok {
			continue
		}
		if got := fingerprint(res); got != want {
			t.Errorf("%s: metering changed the simulation\n got: %s\nwant: %s", tc.name, got, want)
		}
		m := res.Engine
		if m.Events != res.Events {
			t.Errorf("%s: meter counted %d events, results report %d", tc.name, m.Events, res.Events)
		}
		if m.WallNS <= 0 || m.EventsPerSec() <= 0 {
			t.Errorf("%s: meter wall=%d ev/s=%g", tc.name, m.WallNS, m.EventsPerSec())
		}
		if m.HeapHighWater <= 0 {
			t.Errorf("%s: heap high-water %d", tc.name, m.HeapHighWater)
		}
		if m.CallHits+m.CallMisses == 0 {
			t.Errorf("%s: meter saw no Call free-list traffic", tc.name)
		}
	}
}

// TestShardInvariance re-runs the whole equivalence matrix under the
// sharded intra-run execution model (Config.Shards: persistent per-shard
// engines, Reset between arrays, round-robin array assignment) at shard
// counts 1, 2 and 4 and demands the same golden fingerprints bit for
// bit. Shards=1 exercises one engine sequentially reused across every
// array; 2 matches the matrix's array count; 4 exercises the
// shards-beyond-arrays clamp. Any drift means engine reuse leaked state
// between arrays — the one thing Reset's determinism argument forbids.
func TestShardInvariance(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, tc := range equivalenceCases {
			cfg := core.Config{
				Org: tc.org, DataDisks: 10, N: 5,
				Spec: geom.Default(), Sync: tc.sync,
				Cached: tc.cached, CacheMB: 8, Seed: 9,
				Placement: layout.EndPlacement,
				Shards:    shards,
			}
			if tc.faulted {
				cfg.Spares = 1
				cfg.Fault = fault.Config{
					DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
				}
				if tc.cached {
					cfg.Fault.CacheFailAt = 60 * sim.Second
				}
			}
			res, err := core.Run(cfg, tr)
			if err != nil {
				t.Fatalf("%s/shards=%d: %v", tc.name, shards, err)
			}
			want, ok := equivalenceGolden[tc.name]
			if !ok {
				continue
			}
			if got := fingerprint(res); got != want {
				t.Errorf("%s/shards=%d: sharded execution changed the simulation\n got: %s\nwant: %s",
					tc.name, shards, got, want)
			}
			wantShards := shards
			if a := cfg.Arrays(); wantShards > a {
				wantShards = a
			}
			if len(res.EngineShards) != wantShards {
				t.Errorf("%s/shards=%d: %d shard meters, want %d", tc.name, shards, len(res.EngineShards), wantShards)
			}
		}
	}
}

// TestShardMeterSums is the property side of shard invariance: on a
// system with more arrays than shards, the per-shard meters must
// partition the run exactly — per-shard events sum to the run's event
// total (shard engines execute nothing but their arrays' events), the
// aggregate meter equals that sum, and the results match the unsharded
// run bit for bit.
func TestShardMeterSums(t *testing.T) {
	p := smallProfile()
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 2,
		Spec: geom.Default(), Sync: array.DF, Seed: 11,
	}
	plain, err := core.Run(base, tr)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Shards = 3 // 5 arrays over 3 shards: strides {0,3}, {1,4}, {2}
	res, err := core.Run(sharded, tr)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(res), fingerprint(plain); got != want {
		t.Errorf("sharded run drifted from the per-array run\n got: %s\nwant: %s", got, want)
	}
	if len(res.EngineShards) != 3 {
		t.Fatalf("%d shard meters, want 3", len(res.EngineShards))
	}
	var sum uint64
	for s, m := range res.EngineShards {
		if m.Events == 0 {
			t.Errorf("shard %d metered no events", s)
		}
		if m.WallNS <= 0 {
			t.Errorf("shard %d wall %d", s, m.WallNS)
		}
		sum += m.Events
	}
	if sum != res.Events {
		t.Errorf("per-shard events sum to %d, run executed %d", sum, res.Events)
	}
	if res.Engine.Events != sum {
		t.Errorf("aggregate meter has %d events, shard sum is %d", res.Engine.Events, sum)
	}
}

// TestSpanExportPerfetto runs a cached RAID5 with a mid-run disk failure
// and a hot spare, tracer armed, and checks the Chrome trace-event export
// is valid JSON carrying the spans the issue calls out: parity RMW legs
// on the write path and rebuild activity from the spare reconstruction.
func TestSpanExportPerfetto(t *testing.T) {
	p := smallProfile()
	p.Requests = 4000
	p.Duration = 240 * sim.Second
	tr, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: 10, N: 5,
		Spec: geom.Default(), Sync: array.DF,
		Cached: true, CacheMB: 8, Seed: 9,
		Placement: layout.EndPlacement,
		Spares:    1,
		Fault: fault.Config{
			DiskFails: []fault.DiskFail{{Disk: 1, At: 30 * sim.Second}},
		},
		Obs: obs.Config{Window: 10 * sim.Second, SpanTopK: 8},
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	samples := append(append([]obs.SpanSample(nil), res.TailSpans...), res.BgSpans...)
	if len(samples) == 0 {
		t.Fatal("no span samples retained")
	}
	var buf bytes.Buffer
	if err := obs.WriteSpansChrome(&buf, samples); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Events []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if doc.Schema != obs.SpanSchemaVersion {
		t.Fatalf("schema %q, want %q", doc.Schema, obs.SpanSchemaVersion)
	}
	seen := map[string]bool{}
	for _, e := range doc.Events {
		if e.Ph == "X" {
			seen[e.Name] = true
		}
	}
	for _, want := range []string{"rmw-parity", "rebuild", "rebuild-chunk", "destage", obs.SpanQueue, obs.SpanReadOld} {
		if !seen[want] {
			t.Errorf("export has no %q span; span names seen: %v", want, seen)
		}
	}
}

// TestTraceSpeedMonotonicity: doubling the load must not improve response
// time; halving it must not hurt, for every organization.
func TestTraceSpeedMonotonicity(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	for _, org := range []array.Org{array.OrgBase, array.OrgRAID5} {
		var means []float64
		for _, speed := range []float64{0.5, 1, 2} {
			cfg := core.Config{
				Org: org, DataDisks: 10, N: 10,
				Spec: geom.Default(), Sync: array.DF, Seed: 5,
			}
			scaled, err := tr.Scale(speed)
			if err != nil {
				t.Fatalf("%v @%g: %v", org, speed, err)
			}
			res, err := core.Run(cfg, scaled)
			if err != nil {
				t.Fatalf("%v @%g: %v", org, speed, err)
			}
			means = append(means, res.Resp.Mean())
		}
		if !(means[0] <= means[1]*1.05 && means[1] <= means[2]*1.05) {
			t.Errorf("%v: response not monotone in load: %v", org, means)
		}
	}
}

// TestStripingUnitExtremesApproachKnownShapes: an enormous striping unit
// makes RAID5 behave like unstriped data + parity, so its balancing edge
// over a 1-block unit should vanish on the skewed trace (Figure 8's
// right-hand side rising toward Parity Striping).
func TestStripingUnitExtremes(t *testing.T) {
	tr, err := workload.Generate(smallProfile())
	if err != nil {
		t.Fatal(err)
	}
	mean := func(su int) float64 {
		cfg := core.Config{
			Org: array.OrgRAID5, DataDisks: 10, N: 10,
			Spec: geom.Default(), Sync: array.DF, StripingUnit: su, Seed: 6,
		}
		res, err := core.Run(cfg, tr)
		if err != nil {
			t.Fatalf("su=%d: %v", su, err)
		}
		return res.Resp.Mean()
	}
	fine, coarse := mean(1), mean(4096)
	if fine >= coarse {
		// Trace 2 is skew-dominated: fine striping must win.
		t.Errorf("striping unit 1 (%.2f ms) should beat 4096 (%.2f ms) on the skewed trace", fine, coarse)
	}
}
