module raidsim

go 1.22
