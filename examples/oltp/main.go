// OLTP capacity planning: a bank is sizing reliable storage for its
// transaction system and wants media recovery without mirroring's 100%
// disk overhead. This example runs the full organization comparison —
// Base, Mirror, RAID5, Parity Striping, and RAID4 with parity caching —
// on both of the paper's workload shapes, with and without a non-volatile
// controller cache, and prints the equal-capacity cost/performance table
// a storage architect would want.
package main

import (
	"fmt"
	"log"
	"os"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/report"
	"raidsim/internal/workload"
)

func main() {
	for _, prof := range []workload.Profile{
		workload.Trace1Profile().Scaled(0.03),
		workload.Trace2Profile().Scaled(0.5),
	} {
		tr, err := workload.Generate(prof)
		if err != nil {
			log.Fatal(err)
		}
		t := &report.Table{
			Title: fmt.Sprintf("workload %s: %d requests, %d data disks, %.0f%% writes",
				prof.Name, len(tr.Records), prof.NumDisks, prof.WriteFraction*100),
			Columns: []string{"organization", "drives", "overhead", "resp (ms)", "resp cached 16MB (ms)"},
		}
		for _, org := range []array.Org{
			array.OrgBase, array.OrgMirror, array.OrgRAID5,
			array.OrgParityStriping, array.OrgRAID4, array.OrgParityLog,
		} {
			// Table 4's baseline, sized to the trace's data capacity.
			cfg := core.DefaultConfig(org)
			cfg.DataDisks = prof.NumDisks
			// RAID4 is only studied cached; parity logging only
			// non-cached (its log plays the cache's role).
			cachedStr, uncachedStr := "-", "-"
			if org != array.OrgParityLog {
				cached, err := core.Run(withCache(cfg, true), tr)
				if err != nil {
					log.Fatal(err)
				}
				cachedStr = fmt.Sprintf("%.2f", cached.MeanResponseMS())
			}
			if org != array.OrgRAID4 {
				uncached, err := core.Run(withCache(cfg, false), tr)
				if err != nil {
					log.Fatal(err)
				}
				uncachedStr = fmt.Sprintf("%.2f", uncached.MeanResponseMS())
			}
			overhead := float64(cfg.PhysicalDisks())/float64(prof.NumDisks) - 1
			t.AddRow(org.String(),
				fmt.Sprintf("%d", cfg.PhysicalDisks()),
				fmt.Sprintf("%.0f%%", overhead*100),
				uncachedStr,
				cachedStr)
		}
		t.AddNote("equal-capacity comparison: every organization stores the same database")
		t.AddNote("redundant organizations survive any single drive failure; Base does not")
		if err := t.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("The paper's conclusion holds: with a modest NV cache, RAID5/RAID4")
	fmt.Println("deliver mirror-class performance and media recovery at ~10% disk")
	fmt.Println("overhead instead of 100%.")
}

func withCache(cfg core.Config, cached bool) core.Config {
	cfg.Cached = cached
	return cfg
}
