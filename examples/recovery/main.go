// Recovery: why redundant arrays exist. This example exercises both
// halves of the media-recovery story:
//
//  1. Correctness — a functional in-memory RAID5 store with real XOR
//     parity: write a "database", fail a drive, read everything back
//     through reconstruction, rebuild onto a spare, verify parity.
//  2. Performance — the same degraded and rebuilding array under OLTP
//     load, quantifying the paper's remark that performance suffers
//     during reconstruction.
//  3. Fault injection — a full trace replay where a drive dies mid-run
//     (t = 30 s), a hot spare takes over, and the simulator splits the
//     response-time statistics into the healthy and degraded windows.
package main

import (
	"fmt"
	"log"

	"raidsim/internal/array"
	"raidsim/internal/blockdev"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/recovery"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

func main() {
	functional()
	performance()
	midRunFailure()
}

func functional() {
	fmt.Println("== functional recovery (real XOR parity) ==")
	lay := layout.NewRAID5(4, 600, 2)
	store := blockdev.New(lay, 512)
	src := rng.New(42)

	// Write a little "database".
	content := map[int64][]byte{}
	for i := 0; i < 400; i++ {
		lba := src.Int63n(store.Capacity())
		data := make([]byte, 512)
		for j := range data {
			data[j] = byte(src.Uint64())
		}
		if err := store.Write(lba, data); err != nil {
			log.Fatal(err)
		}
		content[lba] = data
	}
	if err := store.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d distinct blocks; parity verified\n", len(content))

	if err := store.FailDisk(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("disk 2 failed — reading everything back degraded...")
	for lba, want := range content {
		got, err := store.Read(lba)
		if err != nil {
			log.Fatalf("lba %d: %v", lba, err)
		}
		if string(got) != string(want) {
			log.Fatalf("lba %d: reconstruction corrupted data", lba)
		}
	}
	fmt.Printf("all blocks intact (%d needed reconstruction)\n", store.Reconstructions)

	n, err := store.Rebuild(2)
	if err != nil {
		log.Fatal(err)
	}
	if err := store.VerifyParity(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebuilt %d blocks onto the spare; parity verified again\n\n", n)
}

func performance() {
	fmt.Println("== performance while degraded / rebuilding ==")
	for _, mode := range []struct {
		name    string
		failed  int
		rebuild bool
	}{
		{"healthy", -1, false},
		{"degraded", 0, false},
		{"rebuilding", 0, true},
	} {
		eng := sim.New()
		s, err := recovery.New(eng, recovery.Config{
			N: 10, Spec: geom.Default(), StripingUnit: 1,
			FailedDisk: mode.failed,
			Rebuild:    mode.rebuild, RebuildChunk: 96,
			RebuildPause: 10 * sim.Millisecond,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		src := rng.New(9)
		capacity := s.DataBlocks()
		const n = 4000
		for i := 0; i < n; i++ {
			at := sim.Time(i) * 10 * sim.Millisecond
			op := trace.Read
			if src.Bool(0.28) {
				op = trace.Write
			}
			lba := src.Int63n(capacity)
			eng.At(at, func() { s.Submit(op, lba) })
		}
		eng.RunUntil(n * 10 * sim.Millisecond)
		for i := 0; i < 100000 && (!s.Drained() || (mode.rebuild && !s.Results().RebuildDone)); i++ {
			eng.RunFor(100 * sim.Millisecond)
		}
		res := s.Results()
		line := fmt.Sprintf("%-11s mean %6.2f ms", mode.name, res.Resp.Mean())
		if res.DegradedResp.N() > 0 {
			line += fmt.Sprintf("  (degraded ops: %6.2f ms over %d requests)",
				res.DegradedResp.Mean(), res.DegradedResp.N())
		}
		if mode.rebuild && res.RebuildDone {
			line += fmt.Sprintf("  rebuild took %.1f min", float64(res.RebuildTime)/float64(60*sim.Second))
		}
		fmt.Println(line)
	}
	fmt.Println("\nDegraded reads fan out to every survivor, and the rebuild sweep")
	fmt.Println("competes for the same arms — the larger the array, the longer the")
	fmt.Println("exposure window the MTTDL model (internal/reliability) charges for.")
	fmt.Println()
}

// midRunFailure replays an OLTP trace against a RAID5 array with the
// fault injector armed: disk 0 dies 30 seconds in, a hot spare is swapped
// in, and a background rebuild races the foreground load.
func midRunFailure() {
	fmt.Println("== mid-run failure during an OLTP replay ==")
	p := workload.Trace2Profile().Scaled(0.05)
	tr, err := workload.Generate(p)
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{
		Org: array.OrgRAID5, DataDisks: tr.NumDisks, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 7,
		Fault: fault.Config{
			DiskFails: []fault.DiskFail{{Disk: 0, At: 30 * sim.Second}},
		},
		Spares: 1,
	}
	res, err := core.Run(cfg, tr)
	if err != nil {
		log.Fatal(err)
	}
	f := res.Fault
	fmt.Printf("disk 0 failed at t=30s; spare swapped in, rebuild took %.1f min\n",
		float64(f.RebuildTime)/float64(60*sim.Second))
	fmt.Printf("healthy window:  %6.2f ms mean over %d requests\n",
		res.NormalResp.Mean(), res.NormalResp.N())
	fmt.Printf("degraded window: %6.2f ms mean over %d requests (%.1f min degraded)\n",
		res.DegradedResp.Mean(), res.DegradedResp.N(),
		float64(f.DegradedTime)/float64(60*sim.Second))
	if f.DataLossEvents == 0 {
		fmt.Println("no data lost: reads reconstructed from survivors until the spare caught up")
	}
}
