// Quickstart: generate a small OLTP workload, simulate it on a RAID5
// array and on independent disks, and compare response times — the
// paper's core comparison in a dozen lines.
package main

import (
	"fmt"
	"log"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/workload"
)

func main() {
	// A Trace-2-like workload (10 disks, 28% writes, heavy skew), scaled
	// down to run in moments.
	profile := workload.Trace2Profile().Scaled(0.2)
	tr, err := workload.Generate(profile)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d requests over %d disks\n\n", len(tr.Records), tr.NumDisks)

	for _, org := range []array.Org{array.OrgBase, array.OrgRAID5} {
		// Table 4's baseline (10-disk arrays of Table 1's drive, Disk
		// First parity sync); only the system size comes from the trace.
		cfg := core.DefaultConfig(org)
		cfg.DataDisks = profile.NumDisks
		res, err := core.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %d drives: mean response %6.2f ms (reads %6.2f, writes %6.2f)\n",
			org, cfg.PhysicalDisks(), res.MeanResponseMS(), res.ReadResp.Mean(), res.WriteResp.Mean())
	}
	fmt.Println("\nOn this skewed workload RAID5's load balancing beats the write")
	fmt.Println("penalty — the paper's Trace 2 result. Try examples/oltp for the")
	fmt.Println("full comparison, cached and not.")
}
