// Tuning: pick the striping unit and cache size for a RAID5 array under
// your workload. Reproduces the reasoning of sections 4.2.2 and 4.3 as an
// interactive-style sweep: fine striping balances load, coarse striping
// preserves seek affinity and saves arms on multiblock requests; cache
// absorbs the write penalty and shifts the optimum coarser.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/geom"
	"raidsim/internal/report"
	"raidsim/internal/workload"
)

func main() {
	prof := workload.Trace2Profile().Scaled(0.4)
	tr, err := workload.Generate(prof)
	if err != nil {
		log.Fatal(err)
	}

	base := core.Config{
		Org: array.OrgRAID5, DataDisks: prof.NumDisks, N: 10,
		Spec: geom.Default(), Sync: array.DF, Seed: 1,
	}

	// Sweep 1: striping unit, non-cached and cached.
	sus := []int{1, 2, 4, 8, 16, 32, 64}
	fig := &report.Figure{
		Title:  "RAID5 striping unit sweep",
		XLabel: "striping unit (blocks)",
		YLabel: "response time (ms)",
	}
	for _, su := range sus {
		fig.XTicks = append(fig.XTicks, fmt.Sprintf("%d", su))
	}
	for _, cached := range []bool{false, true} {
		name := "non-cached"
		if cached {
			name = "cached-16MB"
		}
		vals := make([]float64, 0, len(sus))
		bestSU, bestMS := 0, math.Inf(1)
		for _, su := range sus {
			cfg := base
			cfg.StripingUnit = su
			cfg.Cached = cached
			cfg.CacheMB = 16
			res, err := core.Run(cfg, tr)
			if err != nil {
				log.Fatal(err)
			}
			ms := res.MeanResponseMS()
			vals = append(vals, ms)
			if ms < bestMS {
				bestMS, bestSU = ms, su
			}
		}
		fig.Add(name, vals...)
		fig.AddNote("%s optimum: %d blocks (%.2f ms)", name, bestSU, bestMS)
	}
	if err := fig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Sweep 2: cache size at the default striping unit.
	sizes := []int{4, 8, 16, 32, 64, 128}
	cfig := &report.Figure{
		Title:  "RAID5 cache size sweep (striping unit 1)",
		XLabel: "cache (MB/array)",
		YLabel: "value",
	}
	for _, mb := range sizes {
		cfig.XTicks = append(cfig.XTicks, fmt.Sprintf("%d", mb))
	}
	var resp, rhit []float64
	for _, mb := range sizes {
		cfg := base
		cfg.Cached = true
		cfg.CacheMB = mb
		res, err := core.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		resp = append(resp, res.MeanResponseMS())
		rhit = append(rhit, res.ReadHitRatio()*100)
	}
	cfig.Add("resp (ms)", resp...)
	cfig.Add("read hit %", rhit...)
	if err := cfig.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reading the sweeps: on a skewed OLTP load keep the striping unit")
	fmt.Println("small; grow the cache until the read-hit curve flattens — the")
	fmt.Println("write penalty is already gone at modest sizes.")
}
