// Robustness: a drive turns sick mid-run — 8x slower, 5% transient
// read errors, a half-second freeze every 10 seconds — and the example
// measures what each defense buys on a RAID1/0 array: deadline
// accounting alone (the naive baseline), bounded retries with backoff,
// and hedged reads racing the mirror twin. The punchline mirrors
// DESIGN.md §3.5: retries absorb the flaky reads before they escalate
// into fallback traffic, and hedging clips the tail the slow drive
// creates, all with zero data loss because exhausted retries land on
// the redundancy path.
package main

import (
	"fmt"
	"log"
	"os"

	"raidsim/internal/array"
	"raidsim/internal/core"
	"raidsim/internal/fault"
	"raidsim/internal/geom"
	"raidsim/internal/report"
	"raidsim/internal/sim"
	"raidsim/internal/workload"
)

func main() {
	prof := workload.Trace2Profile().Scaled(0.3)
	tr, err := workload.Generate(prof)
	if err != nil {
		log.Fatal(err)
	}
	dur := tr.Duration()

	sick := fault.SickDisk{
		Disk:          0,
		At:            dur / 6,
		Until:         5 * dur / 6,
		SlowFactor:    8,
		TransientRate: 0.05,
		HangEvery:     10 * sim.Second,
		HangFor:       500 * sim.Millisecond,
	}
	base := core.Config{
		Org: array.OrgRAID10, DataDisks: prof.NumDisks, N: 5,
		StripingUnit: 4,
		Spec:         geom.Default(), Sync: array.DF, Seed: 1,
		Fault: fault.Config{SickDisks: []fault.SickDisk{sick}},
	}

	type variant struct {
		name string
		mod  func(*core.Config)
	}
	variants := []variant{
		{"naive", func(*core.Config) {}},
		{"retries", func(c *core.Config) { c.Robust.Retries = 2 }},
		{"retries+hedge", func(c *core.Config) {
			c.Robust.Retries = 2
			c.Robust.HedgeAfter = 20 * sim.Millisecond
			c.Robust.HedgeQuantile = 0.95
		}},
	}

	t := &report.Table{
		Title:   fmt.Sprintf("RAID1/0 with a sick disk (8x slow, 5%% flaky, hanging) for the middle 2/3 of %ds", dur/sim.Second),
		Columns: []string{"defense", "mean ms", "gold p95", "miss% @60ms", "retries", "hedge wins", "lost blocks"},
	}
	for _, v := range variants {
		cfg := base
		cfg.Robust.Deadline = 60 * sim.Millisecond
		v.mod(&cfg)
		res, err := core.Run(cfg, tr)
		if err != nil {
			log.Fatal(err)
		}
		rb := &res.Robust
		t.AddRow(v.name,
			fmt.Sprintf("%.2f", res.MeanResponseMS()),
			fmt.Sprintf("%.2f", rb.ClassResp[array.SLOGold].Quantile(0.95)),
			fmt.Sprintf("%.2f%%", 100*rb.DeadlineMissFrac(array.SLOGold)),
			fmt.Sprintf("%d", rb.Retries),
			fmt.Sprintf("%d", rb.HedgeWins),
			fmt.Sprintf("%d", res.Fault.LostReadBlocks+res.Fault.LostWriteBlocks))
	}
	t.AddNote("deadline accounting is pure observation: the naive row measures the same run it would without -deadline")
	t.AddNote("zero lost blocks everywhere: exhausted retries fall back to the mirror twin")
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
