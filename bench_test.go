// Benchmarks: one per table/figure of the paper (exercising exactly the
// configuration that experiment sweeps, at reduced trace scale so `go
// test -bench` completes quickly), plus micro-benchmarks of the hot
// substrate paths. Mean response time is attached to each figure bench as
// a custom metric (ms/resp) so benchmark runs double as a coarse
// regression check on simulation results.
//
// Regenerate the full figures with: go run ./cmd/experiments -all
package raidsim_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"raidsim/internal/array"
	"raidsim/internal/cache"
	"raidsim/internal/campaign"
	"raidsim/internal/core"
	"raidsim/internal/disk"
	"raidsim/internal/exp"
	"raidsim/internal/geom"
	"raidsim/internal/layout"
	"raidsim/internal/obs"
	"raidsim/internal/recovery"
	"raidsim/internal/reliability"
	"raidsim/internal/rng"
	"raidsim/internal/sim"
	"raidsim/internal/trace"
	"raidsim/internal/workload"
)

// benchTraces caches the scaled-down benchmark workloads.
var benchTraces = struct {
	sync.Mutex
	m map[string]*trace.Trace
}{m: map[string]*trace.Trace{}}

func benchTrace(b *testing.B, name string, speed float64) *trace.Trace {
	b.Helper()
	key := name + string(rune('0'+int(speed*10)))
	benchTraces.Lock()
	defer benchTraces.Unlock()
	if t, ok := benchTraces.m[key]; ok {
		return t
	}
	var p workload.Profile
	switch name {
	case "trace1":
		p = workload.Trace1Profile().Scaled(0.004)
	case "trace2":
		p = workload.Trace2Profile().Scaled(0.2)
	default:
		b.Fatalf("unknown trace %q", name)
	}
	t, err := workload.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	if speed != 1 {
		if t, err = t.Scale(speed); err != nil {
			b.Fatal(err)
		}
	}
	benchTraces.m[key] = t
	return t
}

// runBench executes the configuration against the trace b.N times and
// reports the measured mean response time.
func runBench(b *testing.B, cfg core.Config, tr *trace.Trace) {
	b.Helper()
	cfg.Spec = geom.Default()
	cfg.DataDisks = tr.NumDisks
	cfg.Seed = 1
	var last *core.Results
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(cfg, tr)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(last.MeanResponseMS(), "ms/resp")
	b.ReportMetric(float64(last.Events)/float64(len(tr.Records)), "events/req")
}

// --- Table 1: the disk model itself ------------------------------------

func BenchmarkTable1SeekCalibration(b *testing.B) {
	spec := geom.Default()
	for i := 0; i < b.N; i++ {
		if _, err := geom.CalibrateSeek(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table 2: trace generation -----------------------------------------

func BenchmarkTable2TraceGeneration(b *testing.B) {
	p := workload.Trace2Profile().Scaled(0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 4: synchronization policies --------------------------------

func BenchmarkFig4SyncSI(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.SI}, benchTrace(b, "trace2", 1))
}

func BenchmarkFig4SyncDFPR(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.DFPR}, benchTrace(b, "trace2", 1))
}

// --- Figure 5: organizations, non-cached -------------------------------

func BenchmarkFig5Base(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgBase, N: 10}, benchTrace(b, "trace1", 1))
}

func BenchmarkFig5Mirror(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgMirror, N: 10}, benchTrace(b, "trace1", 1))
}

func BenchmarkFig5RAID5(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.DF}, benchTrace(b, "trace1", 1))
}

func BenchmarkFig5ParityStriping(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgParityStriping, N: 10, Sync: array.DF}, benchTrace(b, "trace1", 1))
}

// --- Figures 6/7: access distributions (trace analysis path) -----------

func BenchmarkFig6Characterize(b *testing.B) {
	tr := benchTrace(b, "trace1", 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := trace.Characterize(tr)
		if c.Accesses == 0 {
			b.Fatal("empty characterization")
		}
	}
}

// --- Figure 8/14: striping unit ----------------------------------------

func BenchmarkFig8StripingUnit8(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, StripingUnit: 8, Sync: array.DF},
		benchTrace(b, "trace2", 1))
}

func BenchmarkFig14CachedStripingUnit16(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, StripingUnit: 16, Sync: array.DF,
		Cached: true, CacheMB: 16}, benchTrace(b, "trace2", 1))
}

// --- Figure 9: parity placement ----------------------------------------

func BenchmarkFig9PlacementEnd(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgParityStriping, N: 5, Sync: array.DF,
		Placement: layout.EndPlacement}, benchTrace(b, "trace2", 1))
}

// --- Figure 10/18: trace speed -----------------------------------------

func BenchmarkFig10DoubleSpeedRAID5(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.DF}, benchTrace(b, "trace2", 2))
}

func BenchmarkFig18DoubleSpeedRAID4Cached(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID4, N: 10, Sync: array.DF,
		Cached: true, CacheMB: 16}, benchTrace(b, "trace2", 2))
}

// --- Figures 11/12: cached organizations -------------------------------

func BenchmarkFig11CachedBase64MB(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgBase, N: 10, Cached: true, CacheMB: 64},
		benchTrace(b, "trace2", 1))
}

func BenchmarkFig12CachedRAID5(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.DF,
		Cached: true, CacheMB: 16}, benchTrace(b, "trace2", 1))
}

// --- Figure 13/17: array size under fixed total cache ------------------

func BenchmarkFig13N5Cache8MB(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 5, Sync: array.DF,
		Cached: true, CacheMB: 8}, benchTrace(b, "trace2", 1))
}

func BenchmarkFig17N20RAID4(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID4, N: 20, Sync: array.DF,
		Cached: true, CacheMB: 32}, benchTrace(b, "trace2", 1))
}

// --- Figures 15/16/19: RAID4 parity caching ----------------------------

func BenchmarkFig16RAID4ParityCaching(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID4, N: 10, Sync: array.DF,
		Cached: true, CacheMB: 16}, benchTrace(b, "trace2", 1))
}

func BenchmarkFig19RAID4StripingUnit4(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID4, N: 10, StripingUnit: 4, Sync: array.DF,
		Cached: true, CacheMB: 16}, benchTrace(b, "trace2", 1))
}

// --- Ablations and extensions ------------------------------------------

func BenchmarkAblatePureLRUWriteback(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID5, N: 10, Sync: array.DF,
		Cached: true, CacheMB: 16, PureLRUWriteback: true}, benchTrace(b, "trace2", 1))
}

func BenchmarkAblateFineGrainedParityStriping(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgParityStriping, N: 10, Sync: array.DF,
		ParityStripeUnit: 256}, benchTrace(b, "trace2", 1))
}

func BenchmarkExtDegradedArray(b *testing.B) {
	src := rng.New(3)
	for i := 0; i < b.N; i++ {
		eng := sim.New()
		s, err := recovery.New(eng, recovery.Config{
			N: 10, Spec: geom.Default(), StripingUnit: 1, FailedDisk: 0, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 500; j++ {
			at := sim.Time(j) * 10 * sim.Millisecond
			lba := src.Int63n(s.DataBlocks())
			eng.At(at, func() { s.Submit(trace.Read, lba) })
		}
		eng.Run()
	}
}

func BenchmarkExtMTTDL(b *testing.B) {
	p := reliability.Params{DiskMTTFHours: 100000, MTTRHours: 24}
	for i := 0; i < b.N; i++ {
		if reliability.ArrayFarmMTTDLHours(p, 10, 13) <= 0 {
			b.Fatal("bad MTTDL")
		}
	}
}

// --- Experiment harness end-to-end -------------------------------------

func BenchmarkExperimentTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		ctx := exp.NewContext(exp.Options{Scale: 0.01, Out: &buf})
		e, err := exp.Get("table2")
		if err != nil {
			b.Fatal(err)
		}
		if err := e.Run(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtParityLogging(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgParityLog, N: 10, Sync: array.DF}, benchTrace(b, "trace2", 1))
}

func BenchmarkExtRAID0(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID0, N: 10}, benchTrace(b, "trace2", 1))
}

func BenchmarkExtRAID3(b *testing.B) {
	runBench(b, core.Config{Org: array.OrgRAID3, N: 10}, benchTrace(b, "trace2", 1))
}

// --- Controller Submit hot path ----------------------------------------

// BenchmarkCampaign measures the fleet campaign runner end to end: a
// 4-organization x 4-seed grid (16 runs) per iteration, sharded over 1
// worker vs GOMAXPROCS-bounded pools. Reported runs/s and events/s feed
// the campaign_scaling section of BENCH_array.json. Worker count never
// changes results (TestWorkerCountInvariance pins that); only
// wall-clock should move.
func BenchmarkCampaign(b *testing.B) {
	spec := campaign.Spec{
		Name:  "bench",
		Scale: 0.02,
		Orgs:  []string{"base", "mirror", "raid5", "pstripe"},
		N:     []int{5},
		Seeds: 4,
		Seed:  1,
	}
	points, err := spec.Points()
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var runs, events uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := campaign.Execute(points, campaign.Options{Workers: workers, SelfMetrics: true})
				if err != nil {
					b.Fatal(err)
				}
				if failed := out.Failed(); len(failed) > 0 {
					b.Fatal(failed)
				}
				runs += uint64(out.Executed)
				events += out.Events
			}
			b.StopTimer()
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(runs)/sec, "runs/s")
				b.ReportMetric(float64(events)/sec, "events/s")
			}
		})
	}
}

// BenchmarkArraySubmit drives one array controller's Submit path per
// organization with a mixed 30%-write workload, one request per
// iteration (benchstat-friendly: compare runs with
// `benchstat old.txt new.txt`). The *Obs variants run the same work with
// a windowed observability recorder armed; the *Spans variants
// additionally arm the per-request span tracer; the *Meter variants arm
// the engine self-meter. Each gap to the matching plain/Obs run is that
// layer's overhead budget (≤5% for obs, ≤1% for the meter). Baselines
// live in BENCH_array.json.
func BenchmarkArraySubmit(b *testing.B) {
	points := []struct {
		name   string
		org    array.Org
		cached bool
		obs    bool
		spans  bool
		robust bool
		meter  bool
	}{
		{name: "base", org: array.OrgBase},
		{name: "mirror", org: array.OrgMirror},
		{name: "raid10", org: array.OrgRAID10},
		{name: "raid5", org: array.OrgRAID5},
		{name: "pstripe", org: array.OrgParityStriping},
		{name: "raid5cached", org: array.OrgRAID5, cached: true},
		{name: "raid4cached", org: array.OrgRAID4, cached: true},
		{name: "raid5Obs", org: array.OrgRAID5, obs: true},
		{name: "raid5cachedObs", org: array.OrgRAID5, cached: true, obs: true},
		{name: "raid5Spans", org: array.OrgRAID5, obs: true, spans: true},
		{name: "raid5cachedSpans", org: array.OrgRAID5, cached: true, obs: true, spans: true},
		{name: "raid5Robust", org: array.OrgRAID5, robust: true},
		{name: "raid5cachedRobust", org: array.OrgRAID5, cached: true, robust: true},
		{name: "raid5Meter", org: array.OrgRAID5, meter: true},
		{name: "raid5cachedMeter", org: array.OrgRAID5, cached: true, meter: true},
	}
	for _, p := range points {
		b.Run(p.name, func(b *testing.B) {
			eng := sim.New()
			var rec *obs.Recorder
			if p.obs {
				oc := obs.Config{Window: sim.Second, Disks: 24}
				if p.spans {
					oc.SpanTopK = 8
				}
				rec = obs.NewRecorder(oc)
			}
			cfg := array.Config{
				Org: p.org, N: 10, Spec: geom.Default(), Sync: array.DF,
				Cached: p.cached, CacheBlocks: 4096, Seed: 1, Rec: rec,
			}
			if p.robust {
				// Deadline accounting plus an (idle, no transient errors)
				// retry budget: the robustness layer's always-on cost.
				cfg.Robust = array.RobustConfig{Deadline: 60 * sim.Millisecond, Retries: 2}
			}
			ctrl, err := array.New(eng, cfg)
			if err != nil {
				b.Fatal(err)
			}
			src := rng.New(42)
			capacity := ctrl.DataBlocks()
			var meter *sim.Meter
			if p.meter {
				meter = eng.StartMeter(true)
			}
			// Closed loop: keep a fixed number of requests outstanding so
			// the per-iteration work stays steady instead of queues growing
			// without bound.
			const mpl = 8
			outstanding := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for outstanding >= mpl {
					eng.RunFor(sim.Millisecond)
				}
				op := trace.Read
				if src.Bool(0.3) {
					op = trace.Write
				}
				outstanding++
				ctrl.Submit(array.Request{
					Op: op, LBA: src.Int63n(capacity - 8), Blocks: 1 + src.Intn(4),
					OnComplete: func() { outstanding-- },
				})
			}
			for j := 0; j < 1000000 && !ctrl.Drained(); j++ {
				eng.RunFor(sim.Millisecond)
			}
			b.StopTimer()
			if meter != nil {
				if ms := meter.Stop(); ms.Events == 0 {
					b.Fatal("armed meter saw no events")
				}
			}
			if !ctrl.Drained() {
				b.Fatal("controller did not drain")
			}
		})
	}
}

// --- Substrate micro-benchmarks ----------------------------------------

func BenchmarkEventEngine(b *testing.B) {
	eng := sim.New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			eng.After(1000, fn)
		}
	}
	b.ResetTimer()
	eng.After(1, fn)
	eng.Run()
}

func BenchmarkDiskService(b *testing.B) {
	eng := sim.New()
	spec := geom.Default()
	d, err := disk.New(eng, 0, spec, geom.MustCalibrateSeek(spec), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&disk.Request{
			StartBlock: src.Int63n(spec.BlocksPerDisk()),
			Blocks:     1,
			Priority:   disk.PriNormal,
		})
		eng.Run()
	}
}

func BenchmarkLayoutRAID5Map(b *testing.B) {
	lay := layout.NewRAID5(10, geom.Default().BlocksPerDisk(), 8)
	n := lay.DataBlocks()
	var sink layout.Loc
	for i := 0; i < b.N; i++ {
		sink = lay.Map(int64(i) % n)
	}
	_ = sink
}

func BenchmarkLayoutParityStripingParity(b *testing.B) {
	lay := layout.NewParityStriping(10, geom.Default().BlocksPerDisk(), layout.MiddlePlacement, 0)
	n := lay.DataBlocks()
	var sink layout.Loc
	for i := 0; i < b.N; i++ {
		sink = lay.Parity(int64(i) % n)
	}
	_ = sink
}

func BenchmarkCacheOps(b *testing.B) {
	c, err := cache.New(cache.Config{Blocks: 4096, KeepOldData: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lba := int64(i % 8192)
		if c.Touch(lba) {
			c.MarkDirty(lba)
			continue
		}
		if c.FreeSlots() == 0 {
			if v := c.Victim(); v != nil {
				if v.Dirty {
					c.BeginDestage(v.LBA)
					c.CompleteDestage(v.LBA)
				}
				c.Drop(v.LBA)
			}
		}
		c.Insert(lba, i%3 == 0)
	}
}

func BenchmarkTraceBinaryCodec(b *testing.B) {
	tr := benchTrace(b, "trace2", 1)
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}
